(* E6 — Theorem 3.1 running time:
   sqrt(n)*poly(log k, 1/eps) + poly(k, 1/eps).

   Bechamel wall-time benches of the cost centers:
   - the ADK15 testing stage (the sqrt(n)-driven part);
   - the closest-H_k checking DP (the poly(k)-driven part, in K);
   - the full Algorithm 1 pipeline at a small n.
   Plus a direct wall-clock table of the full tester across n, whose
   s/sqrt(n) ratio column exposes the sublinear growth. *)

open Bechamel

let eps = 0.25
let k = 4

let adk15_test n =
  let p = Pmf.uniform n in
  let oracle = Poissonize.of_pmf_seeded ~seed:5 p in
  Test.make
    ~name:(Printf.sprintf "adk15 n=%d" n)
    (Staged.stage (fun () ->
         ignore (Histotest.Adk15.run oracle ~dstar:p ~eps)))

let check_dp cells =
  let n = 4 * cells in
  let pmf =
    Ops.flatten (Families.zipf ~n ~s:1.) (Partition.equal_width ~n ~cells)
  in
  Test.make
    ~name:(Printf.sprintf "check-dp K=%d" cells)
    (Staged.stage (fun () -> ignore (Closest.tv_to_hk pmf ~k)))

let full_pipeline n =
  let rng = Randkit.Rng.create ~seed:3 in
  let p = Families.staircase ~n ~k ~rng in
  let oracle = Poissonize.of_pmf (Randkit.Rng.split rng) p in
  Test.make
    ~name:(Printf.sprintf "algorithm1 n=%d" n)
    (Staged.stage (fun () -> ignore (Histotest.Hist_tester.run oracle ~k ~eps)))

let benchmark tests =
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      (* Bechamel hands back a Hashtbl; sort by test name so the report
         order is deterministic, not hash-bucket order (histolint:
         det/hashtbl-order). *)
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols) ->
             match Analyze.OLS.estimates ols with
             | Some (t :: _) ->
                 Exp_common.row "  %-24s %12.3f ms/run@." name (t /. 1e6)
             | _ -> Exp_common.row "  %-24s (no estimate)@." name))
    tests

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E6 (Thm 3.1: running time)"
    ~claim:
      "Wall time = sqrt(n)-driven testing + poly(k)-driven DP; the total \
       is sublinear in n.";
  let adk_sizes =
    if mode.Exp_common.quick then [ 1024; 4096; 16384 ]
    else [ 1024; 4096; 16384; 65536; 262144 ]
  in
  let dp_sizes =
    if mode.Exp_common.quick then [ 128; 256; 512 ]
    else [ 128; 256; 512; 1024; 2048 ]
  in
  Exp_common.row "Bechamel OLS estimates (monotonic clock):@.";
  benchmark (List.map adk15_test adk_sizes);
  benchmark (List.map check_dp dp_sizes);
  benchmark [ full_pipeline 1024 ];
  Exp_common.row "@.Full pipeline wall clock (one run each):@.";
  Exp_common.row "%8s | %10s | %12s@." "n" "seconds" "s / sqrt(n)";
  Exp_common.hline ();
  List.iter
    (fun n ->
      let rng = Randkit.Rng.create ~seed:17 in
      let p = Families.staircase ~n ~k ~rng in
      let oracle = Poissonize.of_pmf (Randkit.Rng.split rng) p in
      let _, dt =
        Exp_common.time_of (fun () -> Histotest.Hist_tester.run oracle ~k ~eps)
      in
      Exp_common.row "%8d | %10.3f | %12.2e@." n dt
        (dt /. sqrt (float_of_int n)))
    adk_sizes;
  Exp_common.row
    "@.Expected shape: adk15 scales ~sqrt(n) per quadrupling, check-dp@.";
  Exp_common.row
    "~K log^2 K (the d&c fast path; dense was ~K^2), and the full@.";
  Exp_common.row "pipeline's s/sqrt(n) column is roughly flat.@."
