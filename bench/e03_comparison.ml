(* E3 — Section 1.2 comparison table: this paper vs ILR12 vs CDGR16.

   Two views:
   (a) the planned sample budgets as n grows (the paper's headline:
       sqrt(n) log k + poly(k), decoupled, vs sqrt(kn) log n / eps^{3 or 5}
       — the gap widens with n);
   (b) empirical error rates of the three implementations at their own
       budgets on the same instance pair. *)

let eps = 0.25
let k = 8

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E3 (S1.2: comparison with ILR12 / CDGR16)"
    ~claim:
      "Algorithm 1's budget grows like sqrt(n)*log k + poly(k); the \
       baselines pay sqrt(kn)*log n with worse eps powers, so the gap \
       widens with n.";
  let testers = Histotest.Tester.all () in
  let ns =
    if mode.Exp_common.quick then [ 4096; 16384; 65536; 262144 ]
    else [ 4096; 16384; 65536; 262144; 1048576 ]
  in
  Exp_common.row "%8s" "n";
  List.iter (fun t -> Exp_common.row " | %12s" t.Histotest.Tester.name) testers;
  Exp_common.row "@.";
  Exp_common.hline ();
  List.iter
    (fun n ->
      Exp_common.row "%8d" n;
      List.iter
        (fun t ->
          Exp_common.row " | %12d" (t.Histotest.Tester.budget ~n ~k ~eps))
        testers;
      Exp_common.row "@.")
    ns;
  (* Constant factors differ by design (our practical profile is
     deliberately conservative); the asymptotic claim is the growth, so
     normalize each column by its first row. *)
  let n0 = List.hd ns in
  Exp_common.row "%8s" "growth";
  List.iter
    (fun t ->
      let b0 = t.Histotest.Tester.budget ~n:n0 ~k ~eps in
      let b1 =
        t.Histotest.Tester.budget ~n:(List.nth ns (List.length ns - 1)) ~k ~eps
      in
      Exp_common.row " | %11.1fx" (float_of_int b1 /. float_of_int b0))
    testers;
  Exp_common.row "   (x%d in n)@." (List.nth ns (List.length ns - 1) / n0);
  Exp_common.row "@.Empirical error at each tester's own budget:@.";
  let n = if mode.Exp_common.quick then 4096 else 16384 in
  let trials = if mode.Exp_common.quick then 4 else 12 in
  let yes = Exp_common.yes_instance ~n ~k ~seed:mode.Exp_common.seed in
  let no = Exp_common.no_instance ~n ~k in
  Exp_common.row "%12s | %9s | %9s  (n = %d, %d trials)@." "tester"
    "err(yes)" "err(no)" n trials;
  Exp_common.hline ();
  List.iter
    (fun t ->
      let e_yes, e_no =
        Exp_common.error_pair ~mode ~trials ~yes ~no (fun oracle ->
            t.Histotest.Tester.run oracle ~k ~eps)
      in
      Exp_common.row "%12s | %9.2f | %9.2f@." t.Histotest.Tester.name e_yes
        e_no)
    testers;
  Exp_common.row
    "@.Expected shape: algorithm1's budget column grows slowest (pure@.";
  Exp_common.row
    "sqrt(n)); ilr12 carries the eps^-5 constant; all three testers are@.";
  Exp_common.row "correct on this easy pair at their own budgets.@."
