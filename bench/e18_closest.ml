(* E18 — the checking DP off the K^2 wall: dense reference vs
   divide-and-conquer closest-H_k DP (no new paper claim; this is the
   perf trajectory of Step 10 and everything built on it — Model_select
   doubling probes, E12 selectivity sweeps, the E13/E14 ledgers).

   For each (K, k): a zipf pmf flattened to K constant cells, then

     build   — Numkit.Rank_index construction over the K cells
               (O(K log K), the one-time cost the fast path pays);
     query   — mean latency of a single seg_cost call over a fixed
               deterministic batch of random segments (the O(log K)
               oracle the DP drives);
     D&C     — Closest.fit_cells, the monotone-argmin fast path
               (re-builds its own index, so its total time is
               build + DP; the DP split reported is total - build);
     dense   — Closest.fit_cells_dense, the Theta(K^2 k) reference
               with its K x K cost matrix.

   Every row cross-checks the two paths: exact_match is true iff the
   costs are equal float for float AND the chosen piece starts are
   identical (the leftmost-argmin tie-break contract).  Allocation
   totals (Gc.allocated_bytes deltas) expose the memory story: the
   dense path's K x K matrix is 8*K^2 bytes (128 MB at K = 4096), the
   fast path stays O(K log K).

   One machine-readable line per run is appended to BENCH_closest.json
   so the perf trajectory accumulates across commits. *)

let bench_file = "BENCH_closest.json"

type row = {
  cells : int;
  k : int;
  t_build : float;
  query_ns : float;
  t_fast : float;
  t_dense : float;
  fast_mb : float;
  dense_mb : float;
  exact : bool;
}

let mb bytes = bytes /. (1024. *. 1024.)

let measure ~seed ~cells ~k =
  let n = 4 * cells in
  let pmf =
    Ops.flatten (Families.zipf ~n ~s:1.) (Partition.equal_width ~n ~cells)
  in
  let cs = Closest.cells_of_pmf pmf in
  let kk = Array.length cs in
  let values = Array.map (fun c -> c.Closest.value) cs in
  let weights = Array.map (fun c -> c.Closest.weight) cs in
  (* Build split, measured on a standalone index. *)
  let idx, t_build =
    Exp_common.wall_time_of (fun () ->
        Numkit.Rank_index.create ~values ~weights)
  in
  (* Oracle latency over a deterministic batch of random segments. *)
  let nq = 4096 in
  let rng = Randkit.Rng.create ~seed in
  let segs =
    Array.init nq (fun _ ->
        let a = Randkit.Rng.int rng kk and b = Randkit.Rng.int rng kk in
        if a <= b then (a, b + 1) else (b, a + 1))
  in
  let sink, t_query =
    Exp_common.wall_time_of (fun () ->
        let acc = ref 0. in
        Array.iter
          (fun (lo, hi) ->
            acc := !acc +. Numkit.Rank_index.seg_cost idx ~lo ~hi)
          segs;
        !acc)
  in
  ignore (Sys.opaque_identity sink);
  let query_ns = t_query /. float_of_int nq *. 1e9 in
  let alloc_timed f =
    let a0 = Gc.allocated_bytes () in
    let x, t = Exp_common.wall_time_of f in
    (x, t, mb (Gc.allocated_bytes () -. a0))
  in
  let (cost_fast, starts_fast), t_fast, fast_mb =
    alloc_timed (fun () -> Closest.fit_cells cs ~k)
  in
  let (cost_dense, starts_dense), t_dense, dense_mb =
    alloc_timed (fun () -> Closest.fit_cells_dense cs ~k)
  in
  let exact =
    Float.equal cost_fast cost_dense
    && List.equal Int.equal starts_fast starts_dense
  in
  {
    cells = kk;
    k;
    t_build;
    query_ns;
    t_fast;
    t_dense;
    fast_mb;
    dense_mb;
    exact;
  }

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E18 (closest-H_k DP: dense vs divide & conquer)"
    ~claim:
      "The Monge divide-and-conquer DP over the O(log K) rank-index \
       oracle matches the dense K^2 reference bit for bit while scaling \
       as K log K in time and memory.";
  let sizes =
    if mode.Exp_common.quick then [ 256; 512; 1024; 2048 ]
    else [ 256; 512; 1024; 2048; 4096; 8192 ]
  in
  let ks = [ 2; 8; 32 ] in
  Exp_common.row
    "%6s | %3s | %9s | %8s | %9s | %9s | %7s | %8s | %8s | %5s@." "K" "k"
    "build (s)" "query ns" "d&c (s)" "dense (s)" "speedup" "d&c MB"
    "dense MB" "exact";
  Exp_common.hline ();
  let rows =
    List.concat_map
      (fun cells ->
        List.map
          (fun k ->
            let r = measure ~seed:mode.Exp_common.seed ~cells ~k in
            let speedup = r.t_dense /. Float.max 1e-9 r.t_fast in
            Exp_common.row
              "%6d | %3d | %9.5f | %8.1f | %9.4f | %9.3f | %6.1fx | %8.2f \
               | %8.1f | %5b@."
              r.cells r.k r.t_build r.query_ns r.t_fast r.t_dense speedup
              r.fast_mb r.dense_mb r.exact;
            if not r.exact then
              Exp_common.row
                "WARNING: K=%d k=%d — D&C and dense paths disagree!@."
                r.cells r.k;
            r)
          ks)
      sizes
  in
  let all_exact = List.for_all (fun r -> r.exact) rows in
  let json =
    Printf.sprintf
      "{\"bench\":\"e18_closest\",\"seed\":%d,\"quick\":%b,\
       \"all_exact\":%b,\"rows\":[%s]}"
      mode.Exp_common.seed mode.Exp_common.quick all_exact
      (String.concat ","
         (List.map
            (fun r ->
              Printf.sprintf
                "{\"cells\":%d,\"k\":%d,\"t_build\":%.6f,\
                 \"query_ns\":%.1f,\"t_dp\":%.6f,\"t_fast\":%.6f,\
                 \"t_dense\":%.6f,\"speedup\":%.2f,\"fast_mb\":%.2f,\
                 \"dense_mb\":%.1f,\"exact_match\":%b}"
                r.cells r.k r.t_build r.query_ns
                (Float.max 0. (r.t_fast -. r.t_build))
                r.t_fast r.t_dense
                (r.t_dense /. Float.max 1e-9 r.t_fast)
                r.fast_mb r.dense_mb r.exact)
            rows))
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 bench_file
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Exp_common.row "@.%s@." json;
  Exp_common.row "(appended to %s)@." bench_file;
  Exp_common.row
    "@.Expected shape: dense grows ~K^2 in time and exactly K^2 in@.";
  Exp_common.row
    "memory; the d&c column grows ~K log^2 K with O(K log K) allocation;@.";
  Exp_common.row "exact on every row.@.";
  (* CI runs this in quick mode as a bit-exactness gate: a fast/dense
     disagreement is a correctness bug, not a perf regression. *)
  if not all_exact then exit 1
