(* E22 — socket transport: the reactor serves many clients without
   giving up the stdio loop's bytes or its speed.

   Two gates (wired into CI as `make bench-net`):

   1. Transcript identity: across a (clients, batch, jobs) grid, on an
      accepting and a rejecting corpus, every client's response stream
      over a real loopback TCP connection must be BYTE-IDENTICAL to
      [Service.serve] (the stdio loop) on that client's request stream.
      Any divergence exits non-zero, like E18..E21.

   2. Single-client overhead: socket serve at (clients=1, batch=64,
      jobs=1) must ingest within 1.3x of stdio serve — the daemon's
      stdin/stdout mode over real pipes, transport costs included — on
      the same script.  The reactor's select/read/flush round must not
      tax the single-client path that PR 8 optimized.

   Also recorded (not gated): aggregate throughput as the client count
   grows.  The engine is shared and single-threaded, so this measures
   the reactor's ability to keep the pipe full from several sockets at
   once, not parallel speedup.

   Clients are separate domains ([Domain.spawn], never fork — the
   harness may hold live pool domains), each driving a non-blocking
   connect/write/shutdown/read-to-EOF loop; the server runs serve_net
   on the bench's own domain with [accept_limit] telling it when the
   cell is over.  One machine-readable line per run is appended to
   BENCH_net.json. *)

let bench_file = "BENCH_net.json"

let n = 4096
let k = 4
let eps = 0.25
let family = "staircase:4"

let configure ~seed svc =
  match Service.configure svc ~n ~family ~eps ~cells:None ~seed with
  | Ok _ -> ()
  | Error msg -> failwith ("E22 configure: " ^ msg)

(* Observe-only request stream for one client: private shard names, so
   per-client responses are independent of interleaving with the other
   clients (the engine is shared; shard totals are shard-local). *)
let client_script ~pmf ~seed ~client ~lines ~per_line =
  let rng = Randkit.Rng.create ~seed:(seed + (911 * client)) in
  let alias = Alias.of_pmf pmf in
  let buf = Buffer.create (per_line * 8) in
  Array.init lines (fun i ->
      Buffer.clear buf;
      Buffer.add_string buf
        (Printf.sprintf {|{"cmd":"observe","shard":"c%d.s%d","xs":[|} client
           (i mod 4));
      for j = 0 to per_line - 1 do
        if j > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int (Alias.draw alias rng))
      done;
      Buffer.add_string buf "]}";
      Buffer.contents buf)

(* What the stdio loop answers on this stream — the byte oracle. *)
let reference_transcript ~seed script =
  let svc = Service.create () in
  configure ~seed svc;
  let idx = ref 0 in
  let read_line ~block:_ =
    if !idx < Array.length script then begin
      let l = script.(!idx) in
      incr idx;
      Some l
    end
    else None
  in
  let out = Buffer.create (1 lsl 20) in
  let write buf = Buffer.add_buffer out buf in
  let (_ : Service.serve_stats) =
    Service.serve svc ~pool:Parkit.Pool.sequential ~batch:64 ~read_line ~write
  in
  Buffer.contents out

(* One client: non-blocking loopback TCP.  Writes the whole payload,
   shuts down the send side, reads to EOF; returns the transcript. *)
let client_worker ~port ~payload () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.set_nonblock fd;
  let len = String.length payload in
  let sent = ref 0 in
  let shut = ref false in
  let eof = ref false in
  let out = Buffer.create (1 lsl 16) in
  let tmp = Bytes.create 65536 in
  while not !eof do
    let wl = if !sent < len then [ fd ] else [] in
    match Unix.select [ fd ] wl [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        (match writable with
        | [] -> ()
        | _ :: _ -> (
            match
              Unix.write_substring fd payload !sent (min 65536 (len - !sent))
            with
            | m -> sent := !sent + m
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()));
        if !sent >= len && not !shut then begin
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          shut := true
        end;
        (match readable with
        | [] -> ()
        | _ :: _ ->
            let rec rd () =
              match Unix.read fd tmp 0 (Bytes.length tmp) with
              | 0 -> eof := true
              | m ->
                  Buffer.add_subbytes out tmp 0 m;
                  rd ()
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  ()
            in
            rd ())
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Buffer.contents out

(* One cell: spawn [clients] domains against a fresh ephemeral-port
   listener, serve with the reactor until all of them are done, return
   (transcripts, reactor stats, serve wall time). *)
let run_cell ~seed ~pool ~batch ~payloads () =
  let lfd = Netio.listener (Netio.Tcp ("127.0.0.1", 0)) in
  let port = Netio.bound_port lfd in
  let service = Service.create () in
  configure ~seed service;
  let doms =
    Array.map (fun payload -> Domain.spawn (client_worker ~port ~payload))
      payloads
  in
  let stats, wall =
    Exp_common.wall_time_of (fun () ->
        Netio.serve_net service ~pool ~batch
          ~accept_limit:(Array.length payloads) ~poll_interval:0.05
          ~listeners:[ lfd ] ())
  in
  let transcripts = Array.map Domain.join doms in
  Unix.close lfd;
  (transcripts, stats, wall)

(* Stdio serve with its real transport costs: the daemon's stdin/stdout
   mode verbatim — requests arrive through a pipe and are read through
   Netio.Reader, responses leave through a pipe, exactly as
   bin/histotestd wires it.  A feeder domain plays the upstream producer
   and a drainer domain the consumer.  This is the overhead bar's
   denominator: the socket path is allowed 1.3x of THIS, not of an
   in-memory replay that pays no input syscalls and no line splitting. *)
let stdio_round ~seed ~batch ~payload ~reference () =
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let feeder =
    Domain.spawn (fun () ->
        let len = String.length payload in
        let sent = ref 0 in
        (try
           while !sent < len do
             sent :=
               !sent
               + Unix.write_substring in_w payload !sent
                   (min 65536 (len - !sent))
         done
         with Unix.Unix_error _ -> ());
        Unix.close in_w)
  in
  let drainer =
    Domain.spawn (fun () ->
        let buf = Buffer.create (1 lsl 16) in
        let tmp = Bytes.create 65536 in
        let eof = ref false in
        while not !eof do
          match Unix.read out_r tmp 0 (Bytes.length tmp) with
          | 0 -> eof := true
          | m -> Buffer.add_subbytes buf tmp 0 m
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        Unix.close out_r;
        Buffer.contents buf)
  in
  let service = Service.create () in
  configure ~seed service;
  let reader = Netio.Reader.create in_r in
  let read_line ~block =
    match Netio.Reader.next_line reader ~block with
    | Netio.Reader.Line l -> Some l
    | Netio.Reader.Pending | Netio.Reader.Eof | Netio.Reader.Too_long -> None
  in
  let oc = Unix.out_channel_of_descr out_w in
  let write buf =
    Buffer.output_buffer oc buf;
    flush oc
  in
  let stats, wall =
    Exp_common.wall_time_of (fun () ->
        Service.serve service ~pool:Parkit.Pool.sequential ~batch ~read_line
          ~write)
  in
  close_out oc;
  Unix.close in_r;
  Domain.join feeder;
  let transcript = Domain.join drainer in
  if not (String.equal transcript reference) then
    failwith "E22 stdio baseline transcript diverged from the reference";
  (stats, wall)

let best_cell ~repeats ~seed ~pool ~batch ~payloads =
  let best = ref (run_cell ~seed ~pool ~batch ~payloads ()) in
  for _ = 2 to repeats do
    let (_, _, wall) as r = run_cell ~seed ~pool ~batch ~payloads () in
    let _, _, best_wall = !best in
    if wall < best_wall then best := r
  done;
  !best

let run (mode : Exp_common.mode) =
  Exp_common.section
    ~id:"E22 (socket transport: multi-client reactor, byte-identical)"
    ~claim:
      "Per-client response streams served over loopback TCP through the \
       Netio reactor are byte-identical to stdio serve on the same request \
       stream, at any (clients, batch, jobs); the single-client socket \
       path ingests within 1.3x of stdio serve.";
  let seed = mode.Exp_common.seed in
  let quick = mode.Exp_common.quick in

  let yes = Service.family_of_spec ~n ~seed family |> Result.get_ok in
  let no = Exp_common.no_instance ~n ~k in
  let lines = if quick then 8_000 else 24_000 in
  let per_line = 16 in
  let grid =
    if quick then [ (1, 64, 1); (2, 64, 1); (4, 64, 1); (1, 1, 1); (4, 256, 4) ]
    else
      [
        (1, 64, 1);
        (2, 64, 1);
        (4, 64, 1);
        (8, 64, 1);
        (1, 1, 1);
        (4, 1, 1);
        (4, 256, 4);
        (8, 256, 4);
      ]
  in
  let repeats = if quick then 3 else 5 in
  let max_clients =
    List.fold_left (fun acc (c, _, _) -> max acc c) 1 grid
  in

  let gate_pass = ref true in
  let all_rows = ref [] in
  List.iter
    (fun (side, pmf, corpus_seed) ->
      let scripts =
        Array.init max_clients (fun c ->
            client_script ~pmf ~seed:corpus_seed ~client:c ~lines ~per_line)
      in
      let payloads =
        Array.map
          (fun script ->
            let b = Buffer.create (1 lsl 20) in
            Array.iter
              (fun l ->
                Buffer.add_string b l;
                Buffer.add_char b '\n')
              script;
            Buffer.contents b)
          scripts
      in
      let references = Array.map (reference_transcript ~seed) scripts in
      Exp_common.row "@.%s: %d clients max, %d lines x %d values each@." side
        max_clients lines per_line;
      Exp_common.row "%7s | %5s | %4s | %10s | %8s | %9s@." "clients" "batch"
        "jobs" "values/s" "per-conn" "identical";
      Exp_common.hline ();
      List.iter
        (fun (clients, batch, jobs) ->
          let cell_payloads = Array.sub payloads 0 clients in
          let with_jobs f =
            if jobs <= 1 then f Parkit.Pool.sequential
            else Parkit.Pool.with_pool ~jobs f
          in
          let transcripts, stats, wall =
            with_jobs (fun pool ->
                best_cell ~repeats ~seed ~pool ~batch ~payloads:cell_payloads)
          in
          let identical = ref true in
          Array.iteri
            (fun c t ->
              if not (String.equal t references.(c)) then begin
                identical := false;
                Exp_common.row
                  "MISMATCH %s clients=%d batch=%d jobs=%d client=%d (%d vs \
                   %d bytes)@."
                  side clients batch jobs c (String.length t)
                  (String.length references.(c))
              end)
            transcripts;
          if not !identical then gate_pass := false;
          let rate = float_of_int stats.Netio.engine.Service.values /. wall in
          Exp_common.row "%7d | %5d | %4d | %10.3e | %8.2e | %9b@." clients
            batch jobs rate
            (rate /. float_of_int clients)
            !identical;
          all_rows :=
            (side, clients, batch, jobs, rate, !identical) :: !all_rows)
        grid)
    [ ("yes", yes, seed + 1); ("no", no, seed + 2) ];
  let rows = List.rev !all_rows in
  Exp_common.row "@.net gate (all transcripts byte-identical): %s@."
    (if !gate_pass then "PASS" else "FAIL");

  (* Overhead bar: the same single-client script through stdio serve
     (over real pipes, see [stdio_round]) vs the socket path.  The two
     measurements are INTERLEAVED round by round and compared
     best-vs-best: each is a short run, and on a busy machine two blocks
     measured minutes apart would mostly compare the machine against
     itself. *)
  let gate_script =
    client_script ~pmf:yes ~seed:(seed + 1) ~client:0 ~lines ~per_line
  in
  let gate_payload =
    let b = Buffer.create (1 lsl 20) in
    Array.iter
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      gate_script;
    Buffer.contents b
  in
  let gate_reference = reference_transcript ~seed gate_script in
  let gate_rounds = 2 * repeats in
  let best_socket = ref 0. and best_stdio = ref 0. in
  for _ = 1 to gate_rounds do
    let _, stats, wall =
      run_cell ~seed ~pool:Parkit.Pool.sequential ~batch:64
        ~payloads:[| gate_payload |] ()
    in
    let rate = float_of_int stats.Netio.engine.Service.values /. wall in
    if rate > !best_socket then best_socket := rate;
    let stdio_stats, stdio_wall =
      stdio_round ~seed ~batch:64 ~payload:gate_payload
        ~reference:gate_reference ()
    in
    let rate = float_of_int stdio_stats.Service.values /. stdio_wall in
    if rate > !best_stdio then best_stdio := rate
  done;
  let stdio_rate = !best_stdio in
  let overhead = stdio_rate /. Float.max 1e-9 !best_socket in
  let overhead_pass = overhead <= 1.3 in
  Exp_common.row
    "single-client overhead: stdio %.3e values/s, socket %.3e values/s -> \
     %.2fx (bar: <= 1.3x) %s@."
    stdio_rate !best_socket overhead
    (if overhead_pass then "PASS" else "FAIL");

  let json =
    Printf.sprintf
      "{\"bench\":\"e22_net\",\"n\":%d,\"k\":%d,\"eps\":%g,\"seed\":%d,\
       \"lines\":%d,\"per_line\":%d,\"rows\":[%s],\
       \"stdio_values_per_s\":%.3e,\"socket_values_per_s\":%.3e,\
       \"single_client_overhead\":%.3f,\"overhead_pass\":%b,\
       \"net_gate_pass\":%b}"
      n k eps seed lines per_line
      (String.concat ","
         (List.map
            (fun (side, clients, batch, jobs, rate, identical) ->
              Printf.sprintf
                "{\"side\":\"%s\",\"clients\":%d,\"batch\":%d,\"jobs\":%d,\
                 \"values_per_s\":%.3e,\"identical\":%b}"
                side clients batch jobs rate identical)
            rows))
      stdio_rate !best_socket overhead overhead_pass !gate_pass
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 bench_file
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Exp_common.row "@.%s@." json;
  Exp_common.row "(appended to %s)@." bench_file;
  if not (!gate_pass && overhead_pass) then exit 1
