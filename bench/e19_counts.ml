(* E19 — harness engineering, not a paper claim: the counts-path oracle
   (Poissonize.counts_of_tree over Distrib.Split_tree) against the alias
   stream path.

   Three measurements:

   1. per-trial oracle time vs m at fixed n = 2^20 on a sparse-support
      K-histogram (2^11 heavy singletons, so K <= 2^12 pieces): the
      stream path is Θ(m) alias draws, the counts path
      O(K log(n/K)) binomial splits + the O(n) result-buffer zeroing —
      flat in m.  Target: >= 50x at m = 2^22.  Full mode adds the same
      sweep on a dense full-support staircase, where the counts path is
      bounded by O(n) binomials instead — still flat in m, but the
      crossover against the stream path sits around m ~ 10n, which is
      exactly why the sparse regime is the headline and the dense row is
      reported honestly next to it.
   2. chi^2 path equivalence: both paths draw Poissonized count vectors
      of the same zipf pmf for T trials; per-cell totals are
      Poisson(T*mean*p_i) on each path, so conditioned on the pair sum
      each cell is Binomial(a+b, 1/2) under the null that the paths
      sample the same law.  The summed (a-b)^2/(a+b) statistic is
      chi^2(#cells); we fail the gate (and exit non-zero, like E18's
      exactness gate) if its p-value via gamma_p drops below 1e-9.
   3. verdict-distribution equivalence: Algorithm 1 accept rates over
      trial ensembles on yes/no instances across an (n, k, eps) grid,
      stream vs counts; the two-proportion z-score must stay below 5.
      The two paths consume generators differently, so this is the same
      pin discipline as fit_cells_dense: distributional, never
      bit-exact.

   One machine-readable line per run is appended to BENCH_counts.json. *)

let bench_file = "BENCH_counts.json"

(* Mean per-trial seconds of [draw ()] over [trials] runs.  One warmup
   draw grows the workspace buffers outside the clock, and a full major
   collection fences off GC debt left by the previous arm (the stream
   arm's per-draw garbage would otherwise be paid for during the counts
   arm's measurement). *)
let per_trial_time ~trials draw =
  draw ();
  Gc.full_major ();
  let _, t =
    Exp_common.wall_time_of (fun () ->
        for _ = 1 to trials do
          draw ()
        done)
  in
  t /. float_of_int trials

let timing_rows ~seed ~trials ~ms ~pmf =
  let alias = Alias.of_pmf pmf in
  let tree = Split_tree.of_pmf pmf in
  List.map
    (fun m ->
      let fm = float_of_int m in
      let stream_s =
        let ws = Workspace.create () in
        let o = Poissonize.of_alias_ws ws (Randkit.Rng.create ~seed) alias in
        per_trial_time ~trials (fun () -> ignore (o.Poissonize.poissonized fm))
      in
      let counts_s =
        let ws = Workspace.create () in
        let o =
          Poissonize.counts_of_tree_ws ws (Randkit.Rng.create ~seed) tree
        in
        per_trial_time ~trials (fun () -> ignore (o.Poissonize.poissonized fm))
      in
      (m, stream_s, counts_s, stream_s /. Float.max 1e-9 counts_s))
    ms

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E19 (counts-path oracle: trials without samples)"
    ~claim:
      "Binomial splitting over a shared interval tree generates the \
       Poissonized count vector in O(K log(n/K)) per trial independent of \
       m, while sampling the same law as the Θ(m) alias stream path.";
  let seed = mode.Exp_common.seed in
  let quick = mode.Exp_common.quick in

  (* 1. Per-trial generation time vs m. *)
  let n = 1 lsl 20 in
  let spikes = 1 lsl 11 in
  let sparse =
    Families.spiked ~n ~spikes ~spike_mass:1.0
      ~rng:(Randkit.Rng.create ~seed)
  in
  let ms =
    if quick then [ 1 lsl 18; 1 lsl 20; 1 lsl 22 ]
    else [ 1 lsl 16; 1 lsl 18; 1 lsl 20; 1 lsl 22; 1 lsl 24 ]
  in
  let trials = if quick then 5 else 20 in
  Exp_common.row
    "sparse K-histogram: n=%d, %d heavy singletons (K <= %d pieces), %d \
     trials per point@."
    n spikes
    ((2 * spikes) + 1)
    trials;
  Exp_common.row "%10s | %12s | %12s | %8s@." "m" "stream ms" "counts ms"
    "speedup";
  Exp_common.hline ();
  let sparse_rows = timing_rows ~seed ~trials ~ms ~pmf:sparse in
  List.iter
    (fun (m, s, c, x) ->
      Exp_common.row "%10d | %12.3f | %12.3f | %7.1fx@." m (1e3 *. s)
        (1e3 *. c) x)
    sparse_rows;
  let counts_times = List.map (fun (_, _, c, _) -> c) sparse_rows in
  let flat_ratio =
    List.fold_left Float.max neg_infinity counts_times
    /. Float.max 1e-9 (List.fold_left Float.min infinity counts_times)
  in
  let top_speedup =
    match List.rev sparse_rows with (_, _, _, x) :: _ -> x | [] -> nan
  in
  Exp_common.row
    "counts path max/min per-trial time across the m sweep: %.2fx (flat)@."
    flat_ratio;
  if top_speedup < 50. then
    Exp_common.row
      "WARNING: speedup %.1fx at m=%d below the 50x target on this host@."
      top_speedup
      (List.fold_left max 0 ms);
  let dense_rows =
    if quick then []
    else begin
      let dense = Exp_common.yes_instance ~n ~k:64 ~seed in
      Exp_common.row
        "@.dense full-support staircase (same n; counts path bounded by \
         O(n) binomials):@.";
      let rows = timing_rows ~seed ~trials ~ms ~pmf:dense in
      List.iter
        (fun (m, s, c, x) ->
          Exp_common.row "%10d | %12.3f | %12.3f | %7.1fx@." m (1e3 *. s)
            (1e3 *. c) x)
        rows;
      rows
    end
  in

  (* 2. chi^2 equivalence of per-cell count marginals. *)
  let eq_n = 512 in
  let eq_pmf = Families.zipf ~n:eq_n ~s:1.0 in
  let eq_mean = 4000. in
  let eq_trials = if quick then 300 else 1000 in
  let totals path_seed make =
    let acc = Array.make eq_n 0 in
    let ws = Workspace.create () in
    let o = make ws (Randkit.Rng.create ~seed:path_seed) in
    for _ = 1 to eq_trials do
      let counts = o.Poissonize.poissonized eq_mean in
      for i = 0 to eq_n - 1 do
        acc.(i) <- acc.(i) + counts.(i)
      done
    done;
    acc
  in
  let alias = Alias.of_pmf eq_pmf and tree = Split_tree.of_pmf eq_pmf in
  (* Distinct seeds: the ensembles must be independent for the two-sample
     statistic to be chi^2 under the null. *)
  let a = totals seed (fun ws r -> Poissonize.of_alias_ws ws r alias) in
  let b =
    totals (seed + 1) (fun ws r -> Poissonize.counts_of_tree_ws ws r tree)
  in
  let stat = ref 0. and df = ref 0 in
  for i = 0 to eq_n - 1 do
    let s = a.(i) + b.(i) in
    if s > 0 then begin
      let d = float_of_int (a.(i) - b.(i)) in
      stat := !stat +. (d *. d /. float_of_int s);
      incr df
    end
  done;
  let p_value =
    1. -. Numkit.Special.gamma_p (float_of_int !df /. 2.) (!stat /. 2.)
  in
  let chi2_pass = p_value > 1e-9 in
  Exp_common.row
    "@.chi^2 path equivalence (zipf n=%d, mean=%g, %d trials/path): stat \
     %.1f on %d df, p = %.3g -> %s@."
    eq_n eq_mean eq_trials !stat !df p_value
    (if chi2_pass then "PASS" else "FAIL");

  (* 3. Verdict-distribution equivalence across an (n, k, eps) grid. *)
  let v_trials = if quick then 60 else 200 in
  let config = Exp_common.scaled_config 1.0 in
  let grid = [ (1024, 4, 0.25); (2048, 8, 0.2) ] in
  Exp_common.row
    "@.Algorithm 1 accept rates, %d trials per cell (|z| <= 5 gate):@."
    v_trials;
  Exp_common.row "%6s | %3s | %5s | %5s | %10s | %10s | %6s@." "n" "k" "eps"
    "side" "stream" "counts" "z";
  Exp_common.hline ();
  let verdict_rows =
    List.concat_map
      (fun (vn, vk, veps) ->
        let yes = Exp_common.yes_instance ~n:vn ~k:vk ~seed in
        let no = Exp_common.no_instance ~n:vn ~k:vk in
        List.map
          (fun (side, pmf) ->
            let rate kind =
              Harness.accept_rate ~oracle:kind
                ~rng:(Randkit.Rng.create ~seed)
                ~trials:v_trials ~pmf
                (fun trial ->
                  Histotest.Hist_tester.test ~config ~ws:trial.Harness.ws
                    trial.Harness.oracle ~k:vk ~eps:veps)
            in
            let rs = rate Harness.Stream and rc = rate Harness.Counts in
            let pooled = (rs +. rc) /. 2. in
            let se =
              sqrt (pooled *. (1. -. pooled) *. 2. /. float_of_int v_trials)
            in
            let z = if se > 0. then Float.abs (rs -. rc) /. se else 0. in
            Exp_common.row "%6d | %3d | %5.2f | %5s | %10.3f | %10.3f | %6.2f@."
              vn vk veps side rs rc z;
            (vn, vk, veps, side, rs, rc, z))
          [ ("yes", yes); ("no", no) ])
      grid
  in
  let verdict_pass =
    List.for_all (fun (_, _, _, _, _, _, z) -> z <= 5.) verdict_rows
  in
  if not verdict_pass then
    Exp_common.row "WARNING: verdict distributions diverge between paths@.";
  let equivalence_pass = chi2_pass && verdict_pass in

  let row_json rows =
    String.concat ","
      (List.map
         (fun (m, s, c, x) ->
           Printf.sprintf
             "{\"m\":%d,\"stream_ms\":%.3f,\"counts_ms\":%.3f,\"speedup\":%.1f}"
             m (1e3 *. s) (1e3 *. c) x)
         rows)
  in
  let json =
    Printf.sprintf
      "{\"bench\":\"e19_counts\",\"n\":%d,\"spikes\":%d,\"k_pieces\":%d,\
       \"trials\":%d,\"seed\":%d,\"sparse\":[%s],\"dense\":[%s],\
       \"counts_flat_ratio\":%.2f,\"speedup_at_max_m\":%.1f,\
       \"chi2\":{\"trials\":%d,\"stat\":%.2f,\"df\":%d,\"p_value\":%.6g,\
       \"pass\":%b},\
       \"verdicts\":[%s],\"equivalence_pass\":%b}"
      n spikes
      ((2 * spikes) + 1)
      trials mode.Exp_common.seed (row_json sparse_rows) (row_json dense_rows)
      flat_ratio top_speedup eq_trials !stat !df p_value chi2_pass
      (String.concat ","
         (List.map
            (fun (vn, vk, veps, side, rs, rc, z) ->
              Printf.sprintf
                "{\"n\":%d,\"k\":%d,\"eps\":%g,\"side\":\"%s\",\
                 \"stream\":%.4f,\"counts\":%.4f,\"z\":%.2f}"
                vn vk veps side rs rc z)
            verdict_rows))
      equivalence_pass
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 bench_file
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Exp_common.row "@.%s@." json;
  Exp_common.row "(appended to %s)@." bench_file;
  if not equivalence_pass then exit 1
