(* E4 — Proposition 4.1: the Omega(sqrt(n)/eps^2) barrier.

   The Q_eps family is eps-far from H_k (k < n/3) yet indistinguishable
   from uniform below ~sqrt(n)/eps^2 samples.  We sweep the sample budget
   of the collision uniformity tester across the bound and watch the error
   on the (uniform, Q_eps) pair go from coin-flipping to solved; then we
   confirm the full Algorithm 1 at a starved budget is equally blind. *)

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E4 (Prop 4.1: sqrt(n)/eps^2 lower bound)"
    ~claim:
      "Below ~sqrt(n)/eps^2 samples the Q_eps family cannot be told from \
       uniform; above it, it can.";
  (* Full mode on the counts path pushes n to 2^20: the Paninski instance
     only gets harder with n, and trial cost no longer scales with the
     sqrt(n)/eps^2 budget. *)
  let n =
    if mode.Exp_common.quick then 4096
    else if mode.Exp_common.oracle = Harness.Counts then 1048576
    else 65536
  in
  let eps = 0.1 in
  let trials = if mode.Exp_common.quick then 20 else 60 in
  let rng = Randkit.Rng.create ~seed:mode.Exp_common.seed in
  let q = Histotest.Lowerbound.paninski_instance ~n ~eps ~rng () in
  Exp_common.row "instance: tv(Q, uniform) = %.3f, tv(Q, H_16) = %.3f@.@."
    (Distance.tv q (Pmf.uniform n))
    (Closest.tv_to_hk q ~k:16);

  Exp_common.row "%10s | %10s | %9s | %9s@." "mult" "samples" "err(unif)"
    "err(Q)";
  Exp_common.hline ();
  List.iter
    (fun mult ->
      let config =
        Histotest.Config.scale_budget Histotest.Config.default mult
      in
      let run oracle =
        (Histotest.Uniformity.run ~config oracle ~eps).Histotest.Uniformity
          .verdict
      in
      let e_yes, e_no =
        Exp_common.error_pair ~mode ~trials ~yes:(Pmf.uniform n) ~no:q run
      in
      Exp_common.row "%10.3f | %10d | %9.2f | %9.2f@." mult
        (Histotest.Uniformity.budget ~config ~n ~eps ())
        e_yes e_no)
    [ 0.004; 0.016; 0.062; 0.25; 1.0 ];
  (* The full pipeline at a starved budget is blind too. *)
  let alg_trials = if mode.Exp_common.quick then 2 else 6 in
  Exp_common.row "@.Algorithm 1 (k = 16) on the same pair:@.";
  List.iter
    (fun mult ->
      let config =
        Histotest.Config.scale_budget Histotest.Config.default mult
      in
      let run oracle = Histotest.Hist_tester.test ~config oracle ~k:16 ~eps in
      let e_yes, e_no =
        Exp_common.error_pair ~mode ~trials:alg_trials ~yes:(Pmf.uniform n)
          ~no:q run
      in
      Exp_common.row "  budget x%.3f: err(unif) %.2f, err(Q) %.2f@." mult e_yes
        e_no)
    [ 0.01; 1.0 ];
  Exp_common.row
    "@.Expected shape: at tiny multipliers at least one error column is@.";
  Exp_common.row
    "large (below the information bound the pair cannot be told apart,@.";
  Exp_common.row
    "so any decision rule errs on one side), dropping to <= 1/3 at x1.@."
