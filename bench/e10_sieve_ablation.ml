(* E10 — The sieving stage, ablated (corrigendum focus).

   The PODS 2023 corrigendum concerns the delicate part of the upper-bound
   argument: the iterative sieve's schedule.  We plant c = 14 contaminated
   cells (of varying strength) into an otherwise perfectly learned
   hypothesis over 24 cells, with k = 4 — so one round (capped at k
   removals, the paper's "l <= k'") cannot clean the domain, the heavy cut
   only catches the strongest offenders, and the removal budget
   ~2 k log k = 24 is ample but not unlimited.  (c = 14 exceeds the <= k-1
   breakpoint cells a true completeness instance can have; the point is to
   stress every schedule component at once.)  Variants:

   - default        : stage-1 heavy cut + capped sorted-prefix rounds
   - no-stage1      : skip the one-shot heavy-cell cut
   - single-round   : one removal round only (no iteration)
   - tight-budget   : removal budget scaled to ~k/2 cells
   - no-sieve       : nothing removable (pre-sieve testing-by-learning)

   Each variant reports: sieve completion rate, planted cells removed,
   spurious removals, rounds used, and whether the final chi^2 test then
   accepts the cleaned domain (all averaged over completed runs). *)

let variants k =
  let d = Histotest.Config.default in
  [
    ("default", d);
    ("no-stage1", { d with Histotest.Config.sieve_stage1_mult = 1e9 });
    ( "single-round",
      {
        d with
        Histotest.Config.sieve_extra_rounds =
          1 - Histotest.Config.log2i (k + 1);
      } );
    ("tight-budget", { d with Histotest.Config.sieve_budget_factor = 0.2 });
    ("no-sieve", { d with Histotest.Config.sieve_budget_factor = 0. });
  ]

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E10 (S3.2.1 sieve ablation - corrigendum focus)"
    ~claim:
      "The staged schedule (heavy cut, per-round cap of k removals, \
       O(log k) rounds, k log k budget) is what cleans the domain; each \
       ablation loses completions or leaks contamination into the final \
       test.";
  let n = 3072 in
  let k = 4 in
  let eps = 0.25 in
  let cells = 24 in
  let trials = if mode.Exp_common.quick then 6 else 24 in
  let part = Partition.equal_width ~n ~cells in
  let planted = [ 1; 2; 3; 5; 7; 9; 11; 13; 15; 17; 19; 20; 21; 22 ] in
  (* Zig-zag contamination at two strengths: three strong cells trip the
     stage-1 cut (more would exceed its k-cap and rightly reject); eleven
     weak cells sit below the cut and must be found by the sorted rounds,
     at most k per round. *)
  let w = Array.make n 1. in
  List.iteri
    (fun rank j ->
      let amp = match rank with 0 -> 0.45 | 1 -> 0.35 | 2 -> 0.28 | _ -> 0.1 in
      let cell = Partition.cell part j in
      Interval.iter
        (fun i ->
          w.(i) <-
            (if (i - Interval.lo cell) mod 2 = 0 then 1. +. amp
             else Float.max 0.05 (1. -. amp)))
        cell)
    planted;
  let d = Pmf.of_weights w in
  let dhat = Ops.flatten d part in
  let eligible = Array.make cells true in
  let rng = Randkit.Rng.create ~seed:mode.Exp_common.seed in
  Exp_common.row "(sieve budget at k=%d: %d cells; rounds: %d; %d planted)@.@."
    k
    (Histotest.Config.sieve_budget Histotest.Config.default ~k)
    (Histotest.Config.sieve_rounds Histotest.Config.default ~k)
    (List.length planted);
  Exp_common.row "%13s | %9s | %9s | %9s | %7s | %10s@." "variant"
    "completed" "planted" "spurious" "rounds" "final-test";
  Exp_common.hline ();
  List.iter
    (fun (name, config) ->
      let completed = ref 0 and hit = ref 0 and spurious = ref 0 in
      let rounds = ref 0 and accepted = ref 0 in
      for _ = 1 to trials do
        let oracle = Poissonize.of_pmf (Randkit.Rng.split rng) d in
        let res =
          Histotest.Sieve.run ~config oracle ~dhat ~part ~eligible ~k ~eps
        in
        if res.Histotest.Sieve.verdict = Verdict.Accept then begin
          incr completed;
          List.iter
            (fun j -> if not res.Histotest.Sieve.kept.(j) then incr hit)
            planted;
          Array.iteri
            (fun j kept ->
              if (not kept) && not (List.mem j planted) then incr spurious)
            res.Histotest.Sieve.kept;
          rounds := !rounds + res.Histotest.Sieve.rounds_used;
          let final =
            Histotest.Adk15.run ~config ~cell_mask:res.Histotest.Sieve.kept
              ~part oracle ~dstar:dhat
              ~eps:(eps *. config.Histotest.Config.test_eps_frac)
          in
          if final.Histotest.Adk15.verdict = Verdict.Accept then incr accepted
        end
      done;
      let denom = max 1 !completed in
      Exp_common.row "%13s | %6d/%-2d | %6.1f/%d | %9.1f | %7.1f | %7d/%-2d@."
        name !completed trials
        (float_of_int !hit /. float_of_int denom)
        (List.length planted)
        (float_of_int !spurious /. float_of_int denom)
        (float_of_int !rounds /. float_of_int denom)
        !accepted !completed)
    (variants k);
  Exp_common.row
    "@.Expected shape: 'default' and 'no-stage1' complete, remove all 14@.";
  Exp_common.row
    "planted cells over ~4 rounds, and the final test accepts.@.";
  Exp_common.row
    "'single-round' completes but leaves ~7 contaminated cells, so the@.";
  Exp_common.row
    "final test rejects (the cleaning is incomplete).  'tight-budget' and@.";
  Exp_common.row
    "'no-sieve' cannot fit the removals and reject during sieving.@."
