(* E15 (extension) — the CDVV14 two-sample statistic (footnote 2 of the
   paper credits this line of work for the chi^2-style analysis).

   Closeness testing: given samples from two unknown distributions, decide
   equal vs eps-far.  We verify the statistic's null centering and far-case
   mean, and sweep the budget to locate the transition. *)

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E15 (extension: CDVV14 two-sample closeness)"
    ~claim:
      "Z = sum ((X-Y)^2 - X - Y)/(X+Y) is centered under D1 = D2 and \
       ~2 m eps^2 under dTV >= eps; thresholding at m eps^2/C tests \
       closeness with O(sqrt(n)/eps^2) samples per distribution.";
  let n = 2048 in
  let eps = 0.25 in
  let trials = if mode.Exp_common.quick then 20 else 60 in
  let rng = Randkit.Rng.create ~seed:mode.Exp_common.seed in
  let base = Families.zipf ~n ~s:1. in
  let far = Families.comb ~n ~teeth:32 in
  Exp_common.row "pairs: (zipf, zipf) same; (uniform, comb32) tv = %.3f@.@."
    (Distance.tv (Pmf.uniform n) far);
  Exp_common.row "%10s | %10s | %10s | %10s@." "mult" "samples/ea"
    "err(same)" "err(far)";
  Exp_common.hline ();
  List.iter
    (fun mult ->
      let config =
        Histotest.Config.scale_budget Histotest.Config.default mult
      in
      let wrong_same = ref 0 and wrong_far = ref 0 in
      for _ = 1 to trials do
        let o1 = Poissonize.of_pmf (Randkit.Rng.split rng) base in
        let o2 = Poissonize.of_pmf (Randkit.Rng.split rng) base in
        if
          (Histotest.Closeness.run ~config o1 o2 ~eps).Histotest.Closeness
            .verdict
          <> Verdict.Accept
        then incr wrong_same;
        let o3 = Poissonize.of_pmf (Randkit.Rng.split rng) (Pmf.uniform n) in
        let o4 = Poissonize.of_pmf (Randkit.Rng.split rng) far in
        if
          (Histotest.Closeness.run ~config o3 o4 ~eps).Histotest.Closeness
            .verdict
          <> Verdict.Reject
        then incr wrong_far
      done;
      Exp_common.row "%10.3f | %10d | %10.2f | %10.2f@." mult
        (Histotest.Closeness.budget ~config ~n ~eps ())
        (float_of_int !wrong_same /. float_of_int trials)
        (float_of_int !wrong_far /. float_of_int trials))
    [ 0.01; 0.05; 0.2; 1.0 ];
  Exp_common.row
    "@.Expected shape: far-side error ~1 at starved budgets (the pair is@.";
  Exp_common.row
    "invisible), both errors <= 1/3 at x1 — the same transition anatomy@.";
  Exp_common.row "as the one-sample tests it inspired.@."
