(* E2 — Theorem 1.1, class-size term: at fixed n the budget's k-dependence
   is k * polylog(k) (the k/eps^3 log^2 k + k/eps log(k/eps) terms), i.e.
   near-linear, decoupled from n.

   Method: same protocol as E1, sweeping k at fixed n; the planned-budget
   column exposes the near-linear growth of the k-driven stages (partition
   + learner) on top of the n-driven sqrt(n) stages. *)

let eps = 0.25

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E2 (Thm 1.1: k scaling, decoupled from n)"
    ~claim:
      "At fixed n the budget grows near-linearly in k (with polylog \
       factors); the tester stays correct at x1.00 for every k.";
  let n = if mode.Exp_common.quick then 4096 else 16384 in
  let ks = if mode.Exp_common.quick then [ 1; 2; 4; 8 ]
           else [ 1; 2; 4; 8; 16; 32 ] in
  let trials = if mode.Exp_common.quick then 4 else 12 in
  Exp_common.row "%4s | %10s | %10s | %9s | %9s | %10s@." "k" "budget"
    "k-stages" "err(yes)" "err(no)" "tv(no,H_k)";
  Exp_common.hline ();
  List.iter
    (fun k ->
      let yes = Exp_common.yes_instance ~n ~k ~seed:mode.Exp_common.seed in
      let no = Exp_common.no_instance ~n ~k in
      let tv_no = Closest.tv_to_hk no ~k in
      let config = Histotest.Config.default in
      let budget = Histotest.Hist_tester.plan ~config ~n ~k ~eps () in
      (* The k-driven part of the budget: partition + learner samples. *)
      let b = Histotest.Config.part_b config ~k ~eps in
      let k_stages =
        Histotest.Config.part_samples config ~b
        + Histotest.Config.learner_samples config ~cells:((2 * b) + 2) ~eps
      in
      let e_yes, e_no =
        Exp_common.error_pair ~mode ~trials ~yes ~no (fun oracle ->
            Histotest.Hist_tester.test ~config oracle ~k ~eps)
      in
      Exp_common.row "%4d | %10d | %10d | %9.2f | %9.2f | %10.3f@." k budget
        k_stages e_yes e_no tv_no)
    ks;
  Exp_common.row
    "@.Expected shape: the k-stages column grows ~k*polylog(k) while the@.";
  Exp_common.row
    "total budget stays dominated by the sqrt(n) testing stages; errors@.";
  Exp_common.row "stay <= 1/3 throughout.@."
