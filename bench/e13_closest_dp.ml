(* E13 — The Checking step's dynamic program (Step 10, after CDGR16
   Lemma 4.11): exactness against brute force and cost scaling.

   (a) Exactness: on random small instances with random masks, the DP must
       match the exponential-time reference to 1e-9 — zero mismatches.
   (b) Cost: wall clock vs the number of piecewise cells K at several k —
       the poly(k, 1/eps) term of Theorem 3.1.  The flattened zipf input
       is value-monotone, so this sweep rides the divide-and-conquer
       branch of Closest.fit_cells: ~k K log K oracle calls of O(log K)
       each, i.e. ~k K log^2 K total, instead of the old ~K^2 k dense
       DP (see E18 for the dense-vs-fast comparison). *)

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E13 (Step 10: closest-H_k DP)"
    ~claim:
      "The DP is exact (vs brute force) and runs in ~k K log^2 K on \
       monotone inputs, fitting the poly(k,1/eps) running-time term.";
  let rng = Randkit.Rng.create ~seed:mode.Exp_common.seed in
  (* (a) exactness sweep. *)
  let cases = if mode.Exp_common.quick then 200 else 1000 in
  let mismatches = ref 0 in
  for _ = 1 to cases do
    let n = 2 + Randkit.Rng.int rng 9 in
    let k = 1 + Randkit.Rng.int rng 4 in
    let w = Array.init n (fun _ -> 0.05 +. Randkit.Rng.float rng 1.) in
    let pmf = Pmf.of_weights w in
    let mask = Array.init n (fun _ -> Randkit.Rng.float rng 1. < 0.8) in
    let dp = Closest.l1_to_hk ~mask pmf ~k in
    let brute = Closest.brute_force_l1 ~mask pmf ~k in
    if Float.abs (dp -. brute) > 1e-9 then incr mismatches
  done;
  Exp_common.row "(a) exactness: %d mismatches in %d random instances@."
    !mismatches cases;
  (* (b) timing. *)
  Exp_common.row "@.(b) wall clock of tv_to_hk on a K-cell piecewise input:@.";
  Exp_common.row "%6s | %4s | %10s | %16s@." "K" "k" "seconds"
    "s / (k K lg^2 K)";
  Exp_common.hline ();
  (* The fast path made 2048 cells cheap enough for quick mode. *)
  let sizes = if mode.Exp_common.quick then [ 128; 256; 512; 1024; 2048 ]
              else [ 128; 256; 512; 1024; 2048; 4096; 8192 ] in
  List.iter
    (fun cells ->
      List.iter
        (fun k ->
          let n = 4 * cells in
          let pmf =
            Ops.flatten
              (Families.zipf ~n ~s:1.)
              (Partition.equal_width ~n ~cells)
          in
          let _, dt =
            Exp_common.time_of (fun () -> Closest.tv_to_hk pmf ~k)
          in
          let lg = Float.log (float_of_int cells) /. Float.log 2. in
          Exp_common.row "%6d | %4d | %10.4f | %16.2e@." cells k dt
            (dt /. (float_of_int (cells * k) *. lg *. lg)))
        [ 2; 8 ])
    sizes;
  Exp_common.row
    "@.Expected shape: zero mismatches; the normalized column is roughly@.";
  Exp_common.row "flat (the k K log^2 K law of the d&c branch), with the@.";
  Exp_common.row "index build visible at small K.@."
