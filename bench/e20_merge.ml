(* E20 — merge topology: testing as aggregation of mergeable sufficient
   statistics.

   Three measurements:

   1. The determinism gate (the headline, wired into CI as
      `make bench-merge`): replay a fixed corpus — one yes-instance, one
      no-instance — through Service.replay across a sweep of shard
      counts.  Each shard ingests its round-robin slice on its own pool
      domain; the shard states are merged under both a left fold and a
      balanced tree.  Because the χ² verdict is a function of the exact
      integer count vector alone, every topology must reproduce the
      single-process statistic BIT FOR BIT — not approximately.  Any
      divergence fails the gate and exits non-zero, like E18/E19.

   2. Ingest scaling: wall time of single-process ingest vs sharded
      ingest + merge at each shard count.  Merging is O(cells + n), so
      the sharded path should approach ingest-time/shards plus a
      constant; this is the practical payoff of the monoid.

   3. The distributional half of the monoid: GK quantile sketches are
      merged under the PODS'12 rule (tree topology via Mergeable.Fold).
      The merged summary must keep the GK invariant and its rank bounds
      must still bracket true ranks with width <= 2*eps*N.  This flavor
      is ε-bounded, never bit-exact — reported honestly next to the
      exact gate.

   One machine-readable line per run is appended to BENCH_merge.json. *)

let bench_file = "BENCH_merge.json"

let draw_corpus ~pmf ~samples ~seed =
  let rng = Randkit.Rng.create ~seed in
  let alias = Alias.of_pmf pmf in
  Array.init samples (fun _ -> Alias.draw alias rng)

(* Wall time of the sharded path: build one Suffstat per shard on its own
   pool domain, then left-fold merge.  Mirrors Service.replay's sharding
   exactly, but clocked. *)
module Suff_fold = Numkit.Mergeable.Fold (struct
  type t = Suffstat.t

  let merge = Suffstat.merge
end)

let sharded_time ~pool ~part ~shards values =
  let result = ref None in
  let _, t =
    Exp_common.wall_time_of (fun () ->
        let parts =
          Parkit.Pool.init pool shards (fun s ->
              let st = Suffstat.create ~part in
              let i = ref s in
              while !i < Array.length values do
                Suffstat.observe st values.(!i);
                i := !i + shards
              done;
              st)
        in
        result := Some (Suff_fold.reduce parts))
  in
  (!result, t)

module Gk_fold = Numkit.Mergeable.Fold (struct
  type t = Gk.t

  let merge = Gk.merge
end)

let run (mode : Exp_common.mode) =
  Exp_common.section ~id:"E20 (merge topology: sharded verdicts bit-identical)"
    ~claim:
      "The chi^2 verdict depends on the stream only through exact integer \
       counts, so per-shard sufficient statistics merged under any \
       topology reproduce the single-process statistic bit for bit; GK \
       sketches merge with the epsilon bound intact.";
  let seed = mode.Exp_common.seed in
  let quick = mode.Exp_common.quick in

  (* 1. Determinism gate across shard counts and both instance sides. *)
  let n = 4096 and k = 4 and eps = 0.25 in
  let samples = if quick then 50_000 else 400_000 in
  let shard_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let cells = min n 64 in
  let part = Partition.equal_width ~n ~cells in
  let pool = Parkit.Pool.get_default () in
  let yes = Exp_common.yes_instance ~n ~k ~seed in
  let no = Exp_common.no_instance ~n ~k in
  Exp_common.row
    "corpus: %d iid draws per side, n=%d, k=%d, eps=%g, %d cells, pool \
     jobs=%d@."
    samples n k eps cells (Parkit.Pool.jobs pool);
  Exp_common.row "%5s | %6s | %9s | %22s | %22s | %9s@." "side" "shards"
    "verdict" "z (single)" "z (fold/tree)" "identical";
  Exp_common.hline ();
  (* Both verdict outcomes go through the gate: the yes side draws from
     the hypothesis itself (accept), the no side draws from the far
     instance but is tested against the yes hypothesis (reject). *)
  let replay_rows =
    List.concat_map
      (fun (side, pmf, corpus_seed) ->
        let values = draw_corpus ~pmf ~samples ~seed:corpus_seed in
        List.map
          (fun shards ->
            let r = Service.replay ~pool ~part ~dstar:yes ~eps ~shards values in
            Exp_common.row "%5s | %6d | %9s | %22.15g | %22.15g | %9b@." side
              shards
              (Verdict.to_string r.Service.single_verdict)
              r.Service.single_z r.Service.fold_z r.Service.identical;
            (side, shards, r))
          shard_counts)
      [ ("yes", yes, seed + 1); ("no", no, seed + 2) ]
  in
  let gate_pass =
    List.for_all (fun (_, _, r) -> r.Service.identical) replay_rows
  in
  Exp_common.row "merge gate (all topologies bit-identical): %s@."
    (if gate_pass then "PASS" else "FAIL");

  (* 2. Ingest scaling: single-process vs sharded-then-merged. *)
  let timing_values = draw_corpus ~pmf:yes ~samples ~seed:(seed + 1) in
  let single_t =
    let st = Suffstat.create ~part in
    let _, t =
      Exp_common.wall_time_of (fun () -> Suffstat.observe_all st timing_values)
    in
    t
  in
  Exp_common.row "@.ingest wall time, %d values (single: %.1f ms):@." samples
    (1e3 *. single_t);
  Exp_common.row "%6s | %12s | %8s@." "shards" "sharded ms" "speedup";
  Exp_common.hline ();
  let timing_rows =
    List.map
      (fun shards ->
        let _, t = sharded_time ~pool ~part ~shards timing_values in
        let speedup = single_t /. Float.max 1e-9 t in
        Exp_common.row "%6d | %12.1f | %7.2fx@." shards (1e3 *. t) speedup;
        (shards, t, speedup))
      shard_counts
  in

  (* 3. GK merge: invariant preserved, rank bounds still epsilon-valid. *)
  let gk_eps = 0.01 in
  let gk_n = if quick then 40_000 else 200_000 in
  let gk_shards = 8 in
  let rng = Randkit.Rng.create ~seed:(seed + 3) in
  let stream = Array.init gk_n (fun _ -> Randkit.Rng.float rng 1.0) in
  let parts =
    Array.init gk_shards (fun s ->
        let g = Gk.create ~eps:gk_eps in
        let i = ref s in
        while !i < gk_n do
          Gk.insert g stream.(!i);
          i := !i + gk_shards
        done;
        g)
  in
  let merged = Gk_fold.tree_reduce parts in
  let sorted = Array.copy stream in
  Array.sort Float.compare sorted;
  let queries = if quick then 200 else 2000 in
  let max_width = ref 0 and bracket_ok = ref true in
  for qi = 0 to queries - 1 do
    let idx = qi * (gk_n - 1) / (queries - 1) in
    let q = sorted.(idx) in
    (* true rank: # values <= q (values are iid uniform floats, distinct
       with probability 1) *)
    let r = idx + 1 in
    let lo, hi = Gk.rank_bounds merged q in
    if not (lo <= r && r <= hi) then bracket_ok := false;
    max_width := max !max_width (hi - lo)
  done;
  let width_limit = int_of_float (2. *. gk_eps *. float_of_int gk_n) + 1 in
  let gk_pass =
    Gk.invariant_ok merged && !bracket_ok && !max_width <= width_limit
  in
  Exp_common.row
    "@.GK merge (eps=%g, N=%d, %d shards, tree topology): invariant %b, \
     %d/%d ranks bracketed, max bound width %d (limit %d) -> %s@."
    gk_eps gk_n gk_shards (Gk.invariant_ok merged) queries queries !max_width
    width_limit
    (if gk_pass then "PASS" else "FAIL");

  let all_pass = gate_pass && gk_pass in
  let json =
    Printf.sprintf
      "{\"bench\":\"e20_merge\",\"n\":%d,\"k\":%d,\"eps\":%g,\"cells\":%d,\
       \"samples\":%d,\"seed\":%d,\"jobs\":%d,\"replays\":[%s],\
       \"ingest\":{\"single_ms\":%.1f,\"sharded\":[%s]},\
       \"gk\":{\"eps\":%g,\"n\":%d,\"shards\":%d,\"invariant\":%b,\
       \"max_width\":%d,\"width_limit\":%d,\"pass\":%b},\
       \"merge_gate_pass\":%b}"
      n k eps cells samples seed (Parkit.Pool.jobs pool)
      (String.concat ","
         (List.map
            (fun (side, shards, r) ->
              Printf.sprintf
                "{\"side\":\"%s\",\"shards\":%d,\"verdict\":\"%s\",\
                 \"z\":%.17g,\"identical\":%b}"
                side shards
                (Verdict.to_string r.Service.single_verdict)
                r.Service.single_z r.Service.identical)
            replay_rows))
      (1e3 *. single_t)
      (String.concat ","
         (List.map
            (fun (shards, t, speedup) ->
              Printf.sprintf
                "{\"shards\":%d,\"ms\":%.1f,\"speedup\":%.2f}"
                shards (1e3 *. t) speedup)
            timing_rows))
      gk_eps gk_n gk_shards (Gk.invariant_ok merged) !max_width width_limit
      gk_pass all_pass
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 bench_file
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Exp_common.row "@.%s@." json;
  Exp_common.row "(appended to %s)@." bench_file;
  if not all_pass then exit 1
